// Program-level tests: the Draconis switch program driven through a real
// pipeline + network, one scenario at a time.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/check.h"
#include "core/draconis_program.h"
#include "core/policy.h"
#include "core/topology.h"
#include "net/network.h"
#include "p4/pipeline.h"
#include "sim/simulator.h"

namespace draconis::core {
namespace {

class Probe : public net::Endpoint {
 public:
  void HandlePacket(net::Packet pkt) override { received.push_back(std::move(pkt)); }

  size_t CountOf(net::OpCode op) const {
    size_t n = 0;
    for (const auto& p : received) {
      n += p.op == op ? 1 : 0;
    }
    return n;
  }

  const net::Packet* FirstOf(net::OpCode op) const {
    for (const auto& p : received) {
      if (p.op == op) {
        return &p;
      }
    }
    return nullptr;
  }

  std::vector<net::Packet> received;
};

class DraconisProgramTest : public ::testing::Test {
 protected:
  void Build(SchedulingPolicy* policy, size_t capacity = 64,
             bool shadow_copy_dequeue = true, bool parallel_priority = false) {
    DraconisConfig dc;
    dc.queue_capacity = capacity;
    dc.shadow_copy_dequeue = shadow_copy_dequeue;
    dc.parallel_priority_stages = parallel_priority;
    program = std::make_unique<DraconisProgram>(policy, dc);
    net::NetworkConfig nc;
    nc.max_jitter = 0;
    network = std::make_unique<net::Network>(&simulator, nc);
    pipeline = std::make_unique<p4::SwitchPipeline>(&simulator, program.get(),
                                                    p4::PipelineConfig{});
    switch_node = pipeline->AttachNetwork(network.get());
    client_node = network->Register(&client, net::HostProfile::Wire());
    executor_node = network->Register(&executor, net::HostProfile::Wire());
  }

  net::Packet Submission(std::vector<uint32_t> tids, uint32_t tprops = 0) {
    net::Packet p;
    p.op = net::OpCode::kJobSubmission;
    p.dst = switch_node;
    p.uid = 1;
    p.jid = 1;
    for (uint32_t tid : tids) {
      net::TaskInfo t;
      t.id = net::TaskId{1, 1, tid};
      t.tprops = tprops;
      t.meta.exec_duration = 100;
      p.tasks.push_back(t);
    }
    return p;
  }

  net::Packet Request(uint32_t exec_props = 0) {
    net::Packet p;
    p.op = net::OpCode::kTaskRequest;
    p.dst = switch_node;
    p.exec_props = exec_props;
    p.rtrv_prio = 1;
    return p;
  }

  sim::Simulator simulator;
  std::unique_ptr<DraconisProgram> program;
  std::unique_ptr<net::Network> network;
  std::unique_ptr<p4::SwitchPipeline> pipeline;
  Probe client;
  Probe executor;
  net::NodeId switch_node = net::kInvalidNode;
  net::NodeId client_node = net::kInvalidNode;
  net::NodeId executor_node = net::kInvalidNode;
};

TEST_F(DraconisProgramTest, SubmissionIsAcked) {
  FcfsPolicy fcfs;
  Build(&fcfs);
  network->Send(client_node, Submission({0}));
  simulator.RunAll();
  EXPECT_EQ(client.CountOf(net::OpCode::kJobAck), 1u);
  EXPECT_EQ(program->counters().tasks_enqueued, 1u);
}

TEST_F(DraconisProgramTest, RequestOnEmptyQueueGetsNoOp) {
  FcfsPolicy fcfs;
  Build(&fcfs);
  network->Send(executor_node, Request());
  simulator.RunAll();
  EXPECT_EQ(executor.CountOf(net::OpCode::kNoOpTask), 1u);
}

TEST_F(DraconisProgramTest, SubmittedTaskIsAssignedToRequester) {
  FcfsPolicy fcfs;
  Build(&fcfs);
  network->Send(client_node, Submission({7}));
  simulator.RunUntil(FromMicros(10));
  network->Send(executor_node, Request());
  simulator.RunAll();
  const net::Packet* assignment = executor.FirstOf(net::OpCode::kTaskAssignment);
  ASSERT_NE(assignment, nullptr);
  EXPECT_EQ(assignment->tasks.at(0).id.tid, 7u);
  EXPECT_EQ(assignment->client_addr, client_node);
  EXPECT_GE(assignment->tasks.at(0).meta.enqueue_time, 0);
}

TEST_F(DraconisProgramTest, FcfsOrderAcrossSubmissions) {
  FcfsPolicy fcfs;
  Build(&fcfs);
  for (uint32_t i = 0; i < 3; ++i) {
    network->Send(client_node, Submission({i}));
    simulator.RunUntil(simulator.Now() + FromMicros(5));
  }
  for (int i = 0; i < 3; ++i) {
    network->Send(executor_node, Request());
    simulator.RunUntil(simulator.Now() + FromMicros(5));
  }
  simulator.RunAll();
  std::vector<uint32_t> order;
  for (const auto& p : executor.received) {
    if (p.op == net::OpCode::kTaskAssignment) {
      order.push_back(p.tasks.at(0).id.tid);
    }
  }
  EXPECT_EQ(order, (std::vector<uint32_t>{0, 1, 2}));
}

TEST_F(DraconisProgramTest, MultiTaskSubmissionRecirculatesOncePerExtraTask) {
  FcfsPolicy fcfs;
  Build(&fcfs);
  network->Send(client_node, Submission({0, 1, 2, 3}));
  simulator.RunAll();
  EXPECT_EQ(program->counters().tasks_enqueued, 4u);
  EXPECT_EQ(pipeline->counters().recirculations, 3u);
  EXPECT_EQ(client.CountOf(net::OpCode::kJobAck), 1u);  // one ack per packet
}

TEST_F(DraconisProgramTest, FullQueueSendsErrorWithRemainingTasks) {
  FcfsPolicy fcfs;
  Build(&fcfs, /*capacity=*/2);
  network->Send(client_node, Submission({0, 1, 2, 3}));
  simulator.RunAll();
  EXPECT_EQ(program->counters().tasks_enqueued, 2u);
  const net::Packet* error = client.FirstOf(net::OpCode::kErrorQueueFull);
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->tasks.size(), 2u);  // tasks 2 and 3 bounced
  EXPECT_EQ(error->tasks[0].id.tid, 2u);
  // The add-pointer repair must have healed the queue.
  EXPECT_FALSE(program->queue(0).cp_add_repair_flag());
  EXPECT_EQ(program->queue(0).cp_add_ptr(), 2u);
}

TEST_F(DraconisProgramTest, EmptyDequeueMistakeIsRepairedByNextSubmission) {
  FcfsPolicy fcfs;
  // Textbook dequeue mode: empty polls over-run the pointer on purpose.
  Build(&fcfs, 64, /*shadow_copy_dequeue=*/false);
  // Three requests against an empty queue over-run the retrieve pointer.
  for (int i = 0; i < 3; ++i) {
    network->Send(executor_node, Request());
  }
  simulator.RunAll();
  EXPECT_EQ(executor.CountOf(net::OpCode::kNoOpTask), 3u);
  EXPECT_EQ(program->queue(0).cp_retrieve_ptr(), 3u);

  // The next submission detects and repairs; the task is then retrievable.
  network->Send(client_node, Submission({9}));
  simulator.RunAll();
  EXPECT_EQ(program->counters().retrieve_repairs, 1u);
  EXPECT_FALSE(program->queue(0).cp_retrieve_repair_flag());

  network->Send(executor_node, Request());
  simulator.RunAll();
  const net::Packet* assignment = executor.FirstOf(net::OpCode::kTaskAssignment);
  ASSERT_NE(assignment, nullptr);
  EXPECT_EQ(assignment->tasks.at(0).id.tid, 9u);
}

TEST_F(DraconisProgramTest, CompletionForwardsNoticeAndPiggybacksRequest) {
  FcfsPolicy fcfs;
  Build(&fcfs);
  network->Send(client_node, Submission({5}));
  simulator.RunUntil(FromMicros(10));

  net::Packet completion;
  completion.op = net::OpCode::kTaskCompletion;
  completion.dst = switch_node;
  net::TaskInfo done;
  done.id = net::TaskId{1, 0, 0};
  completion.tasks = {done};
  completion.client_addr = client_node;
  completion.rtrv_prio = 1;
  network->Send(executor_node, std::move(completion));
  simulator.RunAll();

  EXPECT_EQ(client.CountOf(net::OpCode::kCompletionNotice), 1u);
  const net::Packet* assignment = executor.FirstOf(net::OpCode::kTaskAssignment);
  ASSERT_NE(assignment, nullptr);
  EXPECT_EQ(assignment->tasks.at(0).id.tid, 5u);
}

TEST_F(DraconisProgramTest, NonSchedulerTrafficIsForwarded) {
  FcfsPolicy fcfs;
  Build(&fcfs);
  // Hand a transit packet straight to the pipeline (its final destination is
  // the executor): Draconis must behave like a regular switch (§4.1).
  net::Packet other;
  other.op = net::OpCode::kOther;
  other.src = client_node;
  other.dst = executor_node;
  pipeline->HandlePacket(std::move(other));
  simulator.RunAll();
  EXPECT_EQ(executor.CountOf(net::OpCode::kOther), 1u);
}

TEST_F(DraconisProgramTest, SelfAddressedStrayTrafficIsDroppedNotLooped) {
  FcfsPolicy fcfs;
  Build(&fcfs);
  net::Packet other;
  other.op = net::OpCode::kOther;
  other.dst = switch_node;
  network->Send(client_node, std::move(other));
  simulator.RunAll();  // must terminate
  EXPECT_EQ(pipeline->counters().program_drops.at("info_unroutable"), 1u);
}

// --- Priority policy (§6.1) -------------------------------------------------

TEST_F(DraconisProgramTest, PriorityTasksRetrievedHighestFirst) {
  PriorityPolicy prio(4);
  Build(&prio);
  network->Send(client_node, Submission({0}, /*tprops=*/3));  // level 3
  simulator.RunUntil(FromMicros(10));
  network->Send(client_node, Submission({1}, /*tprops=*/1));  // level 1
  simulator.RunUntil(FromMicros(20));

  network->Send(executor_node, Request());
  simulator.RunUntil(FromMicros(40));
  network->Send(executor_node, Request());
  simulator.RunAll();

  std::vector<uint32_t> order;
  for (const auto& p : executor.received) {
    if (p.op == net::OpCode::kTaskAssignment) {
      order.push_back(p.tasks.at(0).id.tid);
    }
  }
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1u);  // priority 1 first
  EXPECT_EQ(order[1], 0u);
}

TEST_F(DraconisProgramTest, PriorityProbingRecirculatesThroughLevels) {
  PriorityPolicy prio(4);
  Build(&prio);
  network->Send(client_node, Submission({0}, /*tprops=*/4));  // lowest level
  simulator.RunUntil(FromMicros(10));
  network->Send(executor_node, Request());
  simulator.RunAll();
  // Levels 1..3 probed empty -> 3 recirculations before level 4 hits.
  EXPECT_EQ(program->counters().priority_probes, 3u);
  EXPECT_EQ(executor.CountOf(net::OpCode::kTaskAssignment), 1u);
}

TEST_F(DraconisProgramTest, AllLevelsEmptyYieldsNoOpAfterFullProbe) {
  PriorityPolicy prio(4);
  Build(&prio);
  network->Send(executor_node, Request());
  simulator.RunAll();
  EXPECT_EQ(executor.CountOf(net::OpCode::kNoOpTask), 1u);
  EXPECT_EQ(program->counters().priority_probes, 3u);
}

TEST_F(DraconisProgramTest, ParallelPriorityStagesProbeWithoutRecirculation) {
  // Tofino-2 layout (§6.1/§8.7): all levels examined in one pass.
  PriorityPolicy prio(4);
  Build(&prio, 64, /*shadow_copy_dequeue=*/true, /*parallel_priority=*/true);
  network->Send(client_node, Submission({0}, /*tprops=*/4));  // lowest level
  simulator.RunUntil(FromMicros(10));
  network->Send(executor_node, Request());
  simulator.RunAll();
  EXPECT_EQ(executor.CountOf(net::OpCode::kTaskAssignment), 1u);
  EXPECT_EQ(program->counters().priority_probes, 0u);
  EXPECT_EQ(pipeline->counters().recirculations, 0u);
}

TEST_F(DraconisProgramTest, ParallelPriorityStagesStillOrderByLevel) {
  PriorityPolicy prio(4);
  Build(&prio, 64, true, /*parallel_priority=*/true);
  network->Send(client_node, Submission({0}, /*tprops=*/4));
  simulator.RunUntil(FromMicros(10));
  network->Send(client_node, Submission({1}, /*tprops=*/2));
  simulator.RunUntil(FromMicros(20));
  network->Send(executor_node, Request());
  simulator.RunUntil(FromMicros(40));
  network->Send(executor_node, Request());
  simulator.RunAll();
  std::vector<uint32_t> order;
  for (const auto& p : executor.received) {
    if (p.op == net::OpCode::kTaskAssignment) {
      order.push_back(p.tasks.at(0).id.tid);
    }
  }
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1u);  // level 2 before level 4
  EXPECT_EQ(order[1], 0u);
}

TEST_F(DraconisProgramTest, ParallelPriorityStagesRequireShadowDequeue) {
  PriorityPolicy prio(4);
  DraconisConfig dc;
  dc.shadow_copy_dequeue = false;
  dc.parallel_priority_stages = true;
  EXPECT_THROW(DraconisProgram(&prio, dc), draconis::CheckFailure);
}

// --- Resource policy (§5.2) with task swapping -------------------------------

TEST_F(DraconisProgramTest, ResourceMismatchSwapsToMatchingTask) {
  ResourcePolicy resource;
  Build(&resource);
  network->Send(client_node, Submission({0}, /*tprops=*/0b100));  // needs C
  simulator.RunUntil(FromMicros(10));
  network->Send(client_node, Submission({1}, /*tprops=*/0b001));  // needs A
  simulator.RunUntil(FromMicros(20));

  // Executor offers only A: must skip task 0 and get task 1.
  network->Send(executor_node, Request(/*exec_props=*/0b001));
  simulator.RunAll();

  const net::Packet* assignment = executor.FirstOf(net::OpCode::kTaskAssignment);
  ASSERT_NE(assignment, nullptr);
  EXPECT_EQ(assignment->tasks.at(0).id.tid, 1u);
  EXPECT_GE(program->counters().swap_walks_started, 1u);

  // Task 0 is still queued for a capable executor.
  network->Send(executor_node, Request(/*exec_props=*/0b111));
  simulator.RunAll();
  EXPECT_EQ(executor.CountOf(net::OpCode::kTaskAssignment), 2u);
}

TEST_F(DraconisProgramTest, NoMatchingTaskRequeuesAndSendsNoOp) {
  ResourcePolicy resource;
  Build(&resource);
  network->Send(client_node, Submission({0}, /*tprops=*/0b100));
  simulator.RunUntil(FromMicros(10));

  network->Send(executor_node, Request(/*exec_props=*/0b001));  // can't run it
  simulator.RunAll();

  EXPECT_EQ(executor.CountOf(net::OpCode::kNoOpTask), 1u);
  EXPECT_EQ(executor.CountOf(net::OpCode::kTaskAssignment), 0u);
  EXPECT_EQ(program->counters().swap_requeues, 1u);
  // Task conserved: still exactly one retrievable task in the queue.
  EXPECT_EQ(program->queue(0).cp_occupancy(), 1u);

  network->Send(executor_node, Request(/*exec_props=*/0b100));
  simulator.RunAll();
  EXPECT_EQ(executor.CountOf(net::OpCode::kTaskAssignment), 1u);
}

TEST_F(DraconisProgramTest, SwapWalkExaminesDeepQueue) {
  ResourcePolicy resource;
  Build(&resource);
  // Five C-tasks in front of one A-task.
  for (uint32_t i = 0; i < 5; ++i) {
    network->Send(client_node, Submission({i}, /*tprops=*/0b100));
    simulator.RunUntil(simulator.Now() + FromMicros(5));
  }
  network->Send(client_node, Submission({5}, /*tprops=*/0b001));
  simulator.RunUntil(simulator.Now() + FromMicros(5));

  network->Send(executor_node, Request(/*exec_props=*/0b001));
  simulator.RunAll();
  const net::Packet* assignment = executor.FirstOf(net::OpCode::kTaskAssignment);
  ASSERT_NE(assignment, nullptr);
  EXPECT_EQ(assignment->tasks.at(0).id.tid, 5u);
  // All six tasks conserved (five still queued).
  EXPECT_EQ(program->queue(0).cp_occupancy(), 5u);
}

// --- Locality policy (§5.3) ---------------------------------------------------

class LocalityProgramTest : public DraconisProgramTest {
 protected:
  LocalityProgramTest() : topology(Topology::Uniform(6, 3)) {}
  Topology topology;
};

TEST_F(LocalityProgramTest, DataLocalExecutorGetsTaskImmediately) {
  LocalityPolicy policy(&topology, LocalityPolicy::Limits{3, 9});
  Build(&policy);
  network->Send(client_node, Submission({0}, /*tprops=*/2));  // data on node 2
  simulator.RunUntil(FromMicros(10));
  network->Send(executor_node, Request(/*exec_props=*/2));  // executor on node 2
  simulator.RunAll();
  EXPECT_EQ(executor.CountOf(net::OpCode::kTaskAssignment), 1u);
  EXPECT_EQ(program->counters().swap_walks_started, 0u);
}

TEST_F(LocalityProgramTest, RemoteExecutorSkipsUntilGlobalLimit) {
  LocalityPolicy policy(&topology, LocalityPolicy::Limits{2, 4});
  Build(&policy);
  network->Send(client_node, Submission({0}, /*tprops=*/2));
  simulator.RunUntil(FromMicros(10));

  // Node 1 is in a different rack than node 2 (racks: 0->0, 1->1, 2->2,
  // 3->0, ...). Each failed examination bumps the skip counter; after the
  // global limit the task runs anywhere.
  int assignments = 0;
  for (int attempt = 0; attempt < 6 && assignments == 0; ++attempt) {
    network->Send(executor_node, Request(/*exec_props=*/1));
    simulator.RunUntil(simulator.Now() + FromMicros(20));
    assignments = static_cast<int>(executor.CountOf(net::OpCode::kTaskAssignment));
  }
  EXPECT_EQ(assignments, 1);
  // It took several no-ops before the task was released.
  EXPECT_GT(executor.CountOf(net::OpCode::kNoOpTask), 0u);
}

TEST_F(LocalityProgramTest, RackLocalExecutorAcceptedAfterRackLimit) {
  LocalityPolicy policy(&topology, LocalityPolicy::Limits{1, 9});
  Build(&policy);
  network->Send(client_node, Submission({0}, /*tprops=*/2));  // data on node 2, rack 2
  simulator.RunUntil(FromMicros(10));

  // Node 5 is on rack 2 as well (5 % 3 == 2): after one skip it qualifies.
  int assignments = 0;
  for (int attempt = 0; attempt < 4 && assignments == 0; ++attempt) {
    network->Send(executor_node, Request(/*exec_props=*/5));
    simulator.RunUntil(simulator.Now() + FromMicros(20));
    assignments = static_cast<int>(executor.CountOf(net::OpCode::kTaskAssignment));
  }
  EXPECT_EQ(assignments, 1);
  const net::Packet* assignment = executor.FirstOf(net::OpCode::kTaskAssignment);
  ASSERT_NE(assignment, nullptr);
  EXPECT_EQ(assignment->tasks.at(0).meta.placement, net::TaskInfo::Placement::kSameRack);
}

}  // namespace
}  // namespace draconis::core
