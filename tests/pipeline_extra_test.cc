// Additional p4-layer coverage: pipeline timing accounting, recirculation
// port service dynamics, ledger composition, and the guarantees programs
// rely on (serial pass ordering, counters under mixed traffic).

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/network.h"
#include "p4/pipeline.h"
#include "p4/register.h"
#include "sim/simulator.h"

namespace draconis::p4 {
namespace {

class Sink : public net::Endpoint {
 public:
  void HandlePacket(net::Packet pkt) override { received.push_back(std::move(pkt)); }
  std::vector<net::Packet> received;
};

// A program whose behaviour is scripted per-opcode: kOther bounces back to
// the source after `bounce` recirculations; kProbe is dropped.
class Scripted : public SwitchProgram {
 public:
  explicit Scripted(uint32_t bounces) : bounces_(bounces) {}

  void OnPass(PassContext& ctx, net::Packet pkt) override {
    order.push_back(pkt.uid);
    if (pkt.op == net::OpCode::kProbe) {
      ctx.Drop(pkt, "probe");
      return;
    }
    if (ctx.pass_number() < bounces_) {
      ctx.Recirculate(std::move(pkt));
      return;
    }
    pkt.dst = pkt.src;
    ctx.Emit(std::move(pkt));
  }

  std::vector<uint32_t> order;

 private:
  uint32_t bounces_;
};

struct Rig {
  explicit Rig(const PipelineConfig& cfg, uint32_t bounces = 0)
      : program(bounces), pipeline(&simulator, &program, cfg) {
    net::NetworkConfig nc;
    nc.max_jitter = 0;
    nc.ns_per_byte = 0.0;
    network = std::make_unique<net::Network>(&simulator, nc);
    switch_node = pipeline.AttachNetwork(network.get());
    node = network->Register(&sink, net::HostProfile::Wire());
  }

  void Send(net::OpCode op, uint32_t uid = 0) {
    net::Packet p;
    p.op = op;
    p.uid = uid;
    p.dst = switch_node;
    network->Send(node, std::move(p));
  }

  sim::Simulator simulator;
  Scripted program;
  SwitchPipeline pipeline;
  std::unique_ptr<net::Network> network;
  Sink sink;
  net::NodeId switch_node = net::kInvalidNode;
  net::NodeId node = net::kInvalidNode;
};

TEST(PipelineExtraTest, PacketsProcessedInArrivalOrder) {
  Rig rig(PipelineConfig{});
  for (uint32_t i = 0; i < 10; ++i) {
    rig.Send(net::OpCode::kOther, i);
  }
  rig.simulator.RunAll();
  ASSERT_EQ(rig.program.order.size(), 10u);
  for (uint32_t i = 0; i < 10; ++i) {
    EXPECT_EQ(rig.program.order[i], i);
  }
}

TEST(PipelineExtraTest, RecirculationPortServesAtItsRate) {
  PipelineConfig cfg;
  cfg.pass_latency = 0;
  cfg.recirc_latency = 0;
  cfg.recirc_rate_pps = 1e6;  // 1 us service per recirculated packet
  cfg.recirc_queue_depth = 100;
  Rig rig(cfg, /*bounces=*/1);
  for (int i = 0; i < 10; ++i) {
    rig.Send(net::OpCode::kOther);
  }
  rig.simulator.RunAll();
  EXPECT_EQ(rig.sink.received.size(), 10u);
  // The ten packets all arrived ~simultaneously; the port spaced their
  // recirculations 1 us apart, so the run takes at least ~9 us.
  EXPECT_GE(rig.simulator.Now(), FromMicros(9));
}

TEST(PipelineExtraTest, CountersAreConsistentUnderMixedTraffic) {
  PipelineConfig cfg;
  cfg.recirc_rate_pps = 1e9;
  Rig rig(cfg, /*bounces=*/2);
  for (int i = 0; i < 6; ++i) {
    rig.Send(net::OpCode::kOther);
  }
  for (int i = 0; i < 4; ++i) {
    rig.Send(net::OpCode::kProbe);
  }
  rig.simulator.RunAll();
  const PipelineCounters& counters = rig.pipeline.counters();
  EXPECT_EQ(counters.packets_in, 10u);
  EXPECT_EQ(counters.recirculations, 12u);  // 6 packets x 2 bounces
  EXPECT_EQ(counters.passes, 10u + 12u);
  EXPECT_EQ(counters.emitted, 6u);
  EXPECT_EQ(counters.program_drops.at("probe"), 4u);
  EXPECT_EQ(counters.recirc_drops, 0u);
  EXPECT_NEAR(counters.RecirculationShare(), 12.0 / 22.0, 1e-9);
}

TEST(PipelineExtraTest, GuaranteedTrafficSurvivesPortSaturation) {
  class MixedRecirc : public SwitchProgram {
   public:
    void OnPass(PassContext& ctx, net::Packet pkt) override {
      if (ctx.pass_number() > 0) {
        pkt.dst = pkt.src;
        ctx.Emit(std::move(pkt));
        return;
      }
      // kRepair rides the lossless class; everything else best-effort.
      ctx.Recirculate(std::move(pkt), pkt.op == net::OpCode::kRepair);
    }
  };
  MixedRecirc program;
  sim::Simulator simulator;
  PipelineConfig cfg;
  cfg.recirc_rate_pps = 1e6;
  cfg.recirc_queue_depth = 2;
  SwitchPipeline pipeline(&simulator, &program, cfg);
  net::NetworkConfig nc;
  nc.max_jitter = 0;
  net::Network network(&simulator, nc);
  const net::NodeId sw = pipeline.AttachNetwork(&network);
  Sink sink;
  const net::NodeId node = network.Register(&sink, net::HostProfile::Wire());

  for (int i = 0; i < 20; ++i) {
    net::Packet best_effort;
    best_effort.op = net::OpCode::kOther;
    best_effort.dst = sw;
    network.Send(node, std::move(best_effort));
    net::Packet repair;
    repair.op = net::OpCode::kRepair;
    repair.dst = sw;
    network.Send(node, std::move(repair));
  }
  simulator.RunAll();

  size_t repairs_out = 0;
  for (const auto& pkt : sink.received) {
    repairs_out += pkt.op == net::OpCode::kRepair ? 1 : 0;
  }
  EXPECT_EQ(repairs_out, 20u) << "lossless-class packet was dropped";
  EXPECT_GT(pipeline.counters().recirc_drops, 0u) << "port never saturated";
}

TEST(PipelineExtraTest, LedgerComposesAcrossArrays) {
  ResourceLedger ledger;
  RegisterArray<uint64_t> a("a", 10, 0, &ledger, 8);
  RegisterArray<uint32_t> b("b", 5, 0, &ledger, 4);
  RegisterArray<uint8_t> c("c", 3, 0, &ledger, 1);
  EXPECT_EQ(ledger.total_bytes(), 80u + 20u + 3u);
  EXPECT_EQ(ledger.entries().size(), 3u);
}

TEST(PipelineExtraTest, UpdateOpIsSingleAccess) {
  RegisterArray<uint64_t> reg("r", 1, 5);
  PacketPass pass;
  const uint64_t old = reg.Update(pass, 0, [](uint64_t v) { return v * 2; });
  EXPECT_EQ(old, 5u);
  EXPECT_EQ(reg.ControlPlaneRead(0), 10u);
  EXPECT_THROW(reg.Read(pass, 0), draconis::CheckFailure);
}

}  // namespace
}  // namespace draconis::p4
