#include <gtest/gtest.h>

#include <deque>

#include "common/check.h"
#include "core/switch_queue.h"
#include "p4/register.h"

namespace draconis::core {
namespace {

QueueEntry MakeEntry(uint32_t tid, net::NodeId client = 5) {
  QueueEntry e;
  e.task.id = net::TaskId{1, 1, tid};
  e.task.meta.exec_duration = 100;
  e.client = client;
  e.valid = true;
  return e;
}

// Convenience wrappers: each queue operation runs in its own pass, as it
// would on hardware.
SwitchQueue::EnqueueResult Enq(SwitchQueue& q, uint32_t tid) {
  p4::PacketPass pass;
  return q.Enqueue(pass, MakeEntry(tid));
}

SwitchQueue::DequeueResult Deq(SwitchQueue& q) {
  p4::PacketPass pass;
  return q.Dequeue(pass);
}

void Repair(SwitchQueue& q, net::RepairTarget target, uint64_t value) {
  p4::PacketPass pass;
  q.ApplyRepair(pass, target, value);
}

TEST(SwitchQueueTest, StartsEmpty) {
  SwitchQueue q("q", 8);
  EXPECT_EQ(q.cp_occupancy(), 0u);
  EXPECT_EQ(q.cp_add_ptr(), 0u);
  EXPECT_EQ(q.cp_retrieve_ptr(), 0u);
}

TEST(SwitchQueueTest, EnqueueDequeueRoundTrip) {
  SwitchQueue q("q", 8);
  auto enq = Enq(q, 7);
  EXPECT_TRUE(enq.added);
  EXPECT_EQ(enq.slot, 0u);
  EXPECT_EQ(q.cp_occupancy(), 1u);

  auto deq = Deq(q);
  ASSERT_TRUE(deq.got_task);
  EXPECT_EQ(deq.entry.task.id.tid, 7u);
  EXPECT_EQ(deq.entry.client, 5u);
  EXPECT_EQ(q.cp_occupancy(), 0u);
}

TEST(SwitchQueueTest, FcfsOrderPreserved) {
  SwitchQueue q("q", 16);
  for (uint32_t i = 0; i < 10; ++i) {
    EXPECT_TRUE(Enq(q, i).added);
  }
  for (uint32_t i = 0; i < 10; ++i) {
    auto deq = Deq(q);
    ASSERT_TRUE(deq.got_task);
    EXPECT_EQ(deq.entry.task.id.tid, i);
  }
}

TEST(SwitchQueueTest, WrapsAroundCapacity) {
  SwitchQueue q("q", 4);
  for (uint32_t round = 0; round < 5; ++round) {
    for (uint32_t i = 0; i < 4; ++i) {
      EXPECT_TRUE(Enq(q, round * 4 + i).added);
    }
    for (uint32_t i = 0; i < 4; ++i) {
      auto deq = Deq(q);
      ASSERT_TRUE(deq.got_task);
      EXPECT_EQ(deq.entry.task.id.tid, round * 4 + i);
    }
  }
  EXPECT_EQ(q.cp_add_ptr(), 20u);
}

TEST(SwitchQueueTest, EachOperationUsesEachRegisterAtMostOnce) {
  // An enqueue and a dequeue must both fit in a single pipeline pass.
  SwitchQueue q("q", 8);
  p4::PacketPass enq_pass;
  EXPECT_NO_THROW(q.Enqueue(enq_pass, MakeEntry(0)));
  p4::PacketPass deq_pass;
  EXPECT_NO_THROW(q.Dequeue(deq_pass));
}

TEST(SwitchQueueTest, TwoQueueOpsInOnePassAreRejected) {
  // Two dequeues through one packet would double-access retrieve_ptr — the
  // queue must detect the contract violation.
  SwitchQueue q("q", 8);
  Enq(q, 0);
  Enq(q, 1);
  p4::PacketPass pass;
  q.Dequeue(pass);
  EXPECT_THROW(q.Dequeue(pass), draconis::CheckFailure);
}

// --- Full-queue handling and add-pointer repair (§4.5, §4.7.1) -------------

TEST(SwitchQueueTest, FullQueueRefusesAndRequestsRepair) {
  SwitchQueue q("q", 2);
  EXPECT_TRUE(Enq(q, 0).added);
  EXPECT_TRUE(Enq(q, 1).added);

  auto full = Enq(q, 2);
  EXPECT_FALSE(full.added);
  EXPECT_TRUE(full.need_add_repair);
  EXPECT_EQ(full.add_repair_value, 2u);
  EXPECT_TRUE(q.cp_add_repair_flag());
  // The mistake is visible until the repair lands.
  EXPECT_EQ(q.cp_add_ptr(), 3u);
}

TEST(SwitchQueueTest, OnlyFirstDetectorLaunchesAddRepair) {
  SwitchQueue q("q", 2);
  Enq(q, 0);
  Enq(q, 1);
  auto first = Enq(q, 2);
  auto second = Enq(q, 3);
  EXPECT_TRUE(first.need_add_repair);
  EXPECT_FALSE(second.need_add_repair);
  EXPECT_FALSE(second.added);
}

TEST(SwitchQueueTest, AddRepairRestoresPointerAndFlag) {
  SwitchQueue q("q", 2);
  Enq(q, 0);
  Enq(q, 1);
  auto full = Enq(q, 2);
  Repair(q, net::RepairTarget::kAddPtr, full.add_repair_value);
  EXPECT_EQ(q.cp_add_ptr(), 2u);
  EXPECT_FALSE(q.cp_add_repair_flag());
  EXPECT_EQ(q.cp_occupancy(), 2u);
}

TEST(SwitchQueueTest, SubmissionWhileAddRepairPendingIsRefusedEvenIfSpaceFreed) {
  // A dequeue makes space while the add repair is still in flight; writing
  // through the inflated pointer would be undone by the repair, so the
  // submission must be refused.
  SwitchQueue q("q", 2);
  Enq(q, 0);
  Enq(q, 1);
  auto full = Enq(q, 2);  // flag set, repair pending
  ASSERT_TRUE(full.need_add_repair);
  ASSERT_TRUE(Deq(q).got_task);  // space appears

  auto blocked = Enq(q, 3);
  EXPECT_FALSE(blocked.added);
  EXPECT_FALSE(blocked.need_add_repair);  // repair already owned elsewhere

  // After the repair lands, submissions succeed again.
  Repair(q, net::RepairTarget::kAddPtr, full.add_repair_value);
  EXPECT_TRUE(Enq(q, 3).added);
}

TEST(SwitchQueueTest, QueueUsableAfterFullEpisode) {
  SwitchQueue q("q", 2);
  Enq(q, 0);
  Enq(q, 1);
  auto full = Enq(q, 2);
  Repair(q, net::RepairTarget::kAddPtr, full.add_repair_value);

  EXPECT_EQ(Deq(q).entry.task.id.tid, 0u);
  EXPECT_TRUE(Enq(q, 9).added);
  EXPECT_EQ(Deq(q).entry.task.id.tid, 1u);
  EXPECT_EQ(Deq(q).entry.task.id.tid, 9u);
}

// --- Empty-queue handling and retrieve-pointer repair (§4.5, §4.7.2) -------

TEST(SwitchQueueTest, DequeueOnEmptyReturnsNothingAndOverruns) {
  SwitchQueue q("q", 8, nullptr, /*shadow_copy_dequeue=*/false);
  auto deq = Deq(q);
  EXPECT_FALSE(deq.got_task);
  EXPECT_FALSE(deq.repair_pending);
  EXPECT_EQ(q.cp_retrieve_ptr(), 1u);  // the deliberate mistake
}

TEST(SwitchQueueTest, NextEnqueueDetectsOverrunAndRequestsRepair) {
  SwitchQueue q("q", 8, nullptr, /*shadow_copy_dequeue=*/false);
  Deq(q);
  Deq(q);
  Deq(q);  // retrieve_ptr = 3, add_ptr = 0

  auto enq = Enq(q, 42);
  EXPECT_TRUE(enq.added);
  EXPECT_EQ(enq.slot, 0u);
  EXPECT_TRUE(enq.need_retrieve_repair);
  EXPECT_EQ(enq.retrieve_repair_value, 0u);  // snap to the new task
  EXPECT_TRUE(q.cp_retrieve_repair_flag());
}

TEST(SwitchQueueTest, DequeueWhileRetrieveRepairPendingIsNoOp) {
  SwitchQueue q("q", 8, nullptr, /*shadow_copy_dequeue=*/false);
  Deq(q);
  auto enq = Enq(q, 42);
  ASSERT_TRUE(enq.need_retrieve_repair);

  auto deq = Deq(q);
  EXPECT_FALSE(deq.got_task);
  EXPECT_TRUE(deq.repair_pending);
}

TEST(SwitchQueueTest, RetrieveRepairMakesTaskRetrievable) {
  SwitchQueue q("q", 8, nullptr, /*shadow_copy_dequeue=*/false);
  for (int i = 0; i < 5; ++i) {
    Deq(q);
  }
  auto enq = Enq(q, 42);
  ASSERT_TRUE(enq.need_retrieve_repair);
  Repair(q, net::RepairTarget::kRetrievePtr, enq.retrieve_repair_value);
  EXPECT_FALSE(q.cp_retrieve_repair_flag());

  auto deq = Deq(q);
  ASSERT_TRUE(deq.got_task);
  EXPECT_EQ(deq.entry.task.id.tid, 42u);
}

TEST(SwitchQueueTest, SubmissionsDuringPendingRetrieveRepairUseTheHint) {
  // While the retrieve pointer is garbage (repair in flight) the fullness
  // check runs against the repair-target hint, so concurrent submissions
  // are still accepted and their tasks retrievable once the repair lands.
  SwitchQueue q("q", 8, nullptr, /*shadow_copy_dequeue=*/false);
  Deq(q);
  Deq(q);
  auto first = Enq(q, 1);  // overrun detector: writes and owns the repair
  EXPECT_TRUE(first.added);
  EXPECT_TRUE(first.need_retrieve_repair);

  auto second = Enq(q, 2);  // racing the repair: hint says occupancy 1 < 8
  EXPECT_TRUE(second.added);
  EXPECT_FALSE(second.need_retrieve_repair);

  Repair(q, net::RepairTarget::kRetrievePtr, first.retrieve_repair_value);
  EXPECT_EQ(Deq(q).entry.task.id.tid, 1u);
  EXPECT_EQ(Deq(q).entry.task.id.tid, 2u);
  EXPECT_FALSE(Deq(q).got_task);
}

TEST(SwitchQueueTest, PendingRetrieveRepairCannotCauseOverwrite) {
  // The interleaving the fuzzer found: overrun, then submissions racing the
  // pending retrieve repair on a tiny queue. Without the hint register the
  // fullness check would pass bogusly and the write would overwrite a live
  // entry after wraparound.
  SwitchQueue q("q", 2, nullptr, /*shadow_copy_dequeue=*/false);
  Enq(q, 0);
  ASSERT_TRUE(Deq(q).got_task);
  Deq(q);  // miss: overrun (rptr = 2, add = 1)
  Deq(q);  // further overrun

  auto t4 = Enq(q, 4);  // overrun detector: writes slot 1, repair -> 1 pending
  ASSERT_TRUE(t4.added);
  ASSERT_TRUE(t4.need_retrieve_repair);
  auto t5 = Enq(q, 5);  // hint occupancy 1 < 2: accepted at slot 2 (cell 0)
  EXPECT_TRUE(t5.added);
  auto t6 = Enq(q, 6);  // hint occupancy 2: genuinely full now -> refused
  EXPECT_FALSE(t6.added);
  EXPECT_TRUE(t6.need_add_repair);

  Repair(q, net::RepairTarget::kRetrievePtr, t4.retrieve_repair_value);
  Repair(q, net::RepairTarget::kAddPtr, t6.add_repair_value);

  EXPECT_EQ(Deq(q).entry.task.id.tid, 4u);  // alive, not overwritten
  EXPECT_EQ(Deq(q).entry.task.id.tid, 5u);
  EXPECT_FALSE(Deq(q).got_task);
}

TEST(SwitchQueueTest, MassiveOverrunIsRepairedByAbsoluteWrite) {
  SwitchQueue q("q", 4, nullptr, /*shadow_copy_dequeue=*/false);
  for (int i = 0; i < 100; ++i) {
    Deq(q);  // idle pollers hammer an empty queue; overrun >> capacity
  }
  EXPECT_EQ(q.cp_retrieve_ptr(), 100u);
  auto enq = Enq(q, 7);
  ASSERT_TRUE(enq.need_retrieve_repair);
  Repair(q, net::RepairTarget::kRetrievePtr, enq.retrieve_repair_value);
  auto deq = Deq(q);
  ASSERT_TRUE(deq.got_task);
  EXPECT_EQ(deq.entry.task.id.tid, 7u);
}

TEST(SwitchQueueTest, DequeueClearsSlotPreventingStaleRedelivery) {
  // After wraparound, a consumed slot must not look valid again.
  SwitchQueue q("q", 2, nullptr, /*shadow_copy_dequeue=*/false);
  Enq(q, 0);
  ASSERT_TRUE(Deq(q).got_task);
  ASSERT_FALSE(Deq(q).got_task);  // overrun: rptr=2, add=1
  auto enq = Enq(q, 1);            // slot 1
  ASSERT_TRUE(enq.need_retrieve_repair);
  Repair(q, net::RepairTarget::kRetrievePtr, enq.retrieve_repair_value);
  auto deq = Deq(q);
  ASSERT_TRUE(deq.got_task);
  EXPECT_EQ(deq.entry.task.id.tid, 1u);
  // Slot 0 (same physical cell as slot 2) was cleared by its dequeue: a
  // further dequeue must see empty, not the stale task 0.
  EXPECT_FALSE(Deq(q).got_task);
}

// --- Task swapping (§5.1) ---------------------------------------------------

TEST(SwitchQueueTest, SwapExchangesWithTargetSlot) {
  SwitchQueue q("q", 8);
  Enq(q, 0);
  Enq(q, 1);
  Enq(q, 2);
  auto deq = Deq(q);  // pops task 0; rptr = 1
  ASSERT_TRUE(deq.got_task);

  p4::PacketPass pass;
  auto swap = q.SwapAt(pass, 1, 1, deq.entry);  // put task 0 at slot 1, take task 1
  EXPECT_TRUE(swap.swapped);
  EXPECT_EQ(swap.previous.task.id.tid, 1u);
  EXPECT_EQ(swap.slot, 1u);

  // Queue order is now task0 (slot 1), task2 (slot 2).
  EXPECT_EQ(Deq(q).entry.task.id.tid, 0u);
  EXPECT_EQ(Deq(q).entry.task.id.tid, 2u);
}

TEST(SwitchQueueTest, SwapDoesNotMovePointers) {
  SwitchQueue q("q", 8);
  Enq(q, 0);
  Enq(q, 1);
  auto deq = Deq(q);
  const uint64_t add = q.cp_add_ptr();
  const uint64_t rptr = q.cp_retrieve_ptr();
  p4::PacketPass pass;
  q.SwapAt(pass, rptr, 1, deq.entry);
  EXPECT_EQ(q.cp_add_ptr(), add);
  EXPECT_EQ(q.cp_retrieve_ptr(), rptr);
}

TEST(SwitchQueueTest, SwapPastEndReportsAndWritesNothing) {
  SwitchQueue q("q", 8);
  Enq(q, 0);
  auto deq = Deq(q);  // queue now empty; add = 1, rptr = 1
  p4::PacketPass pass;
  auto swap = q.SwapAt(pass, 1, 1, deq.entry);
  EXPECT_TRUE(swap.past_end);
  EXPECT_FALSE(swap.swapped);
  EXPECT_EQ(q.cp_occupancy(), 0u);
}

TEST(SwitchQueueTest, StaleSwapRedirectsToHead) {
  SwitchQueue q("q", 8);
  for (uint32_t i = 0; i < 4; ++i) {
    Enq(q, i);
  }
  auto deq = Deq(q);  // pops 0; rptr = 1

  // Another two requests drain tasks 1 and 2 while the swap walk is parked.
  Deq(q);
  Deq(q);  // rptr = 3

  // The walk wants slot 1, but its pkt_retrieve_ptr (1) is stale (< 3):
  // the queue must swap with the head (slot 3) instead, otherwise the
  // carried task would land behind the retrieve pointer and be lost.
  p4::PacketPass pass;
  auto swap = q.SwapAt(pass, 1, 1, deq.entry);
  EXPECT_TRUE(swap.swapped);
  EXPECT_EQ(swap.slot, 3u);
  EXPECT_EQ(swap.previous.task.id.tid, 3u);
  EXPECT_EQ(swap.head, 3u);

  // The carried task 0 is now at the head and retrievable.
  EXPECT_EQ(Deq(q).entry.task.id.tid, 0u);
}

TEST(SwitchQueueTest, SwapPreservesRelativeOrderOfRemainingTasks) {
  SwitchQueue q("q", 8);
  for (uint32_t i = 0; i < 4; ++i) {
    Enq(q, i);
  }
  auto deq = Deq(q);  // pops 0
  p4::PacketPass p1;
  auto s1 = q.SwapAt(p1, 1, 1, deq.entry);  // 0 <-> 1
  p4::PacketPass p2;
  auto s2 = q.SwapAt(p2, 1, 2, s1.previous);  // 1 <-> 2
  ASSERT_TRUE(s2.swapped);
  EXPECT_EQ(s2.previous.task.id.tid, 2u);
  // Remaining queue order: 0, 1, 3.
  EXPECT_EQ(Deq(q).entry.task.id.tid, 0u);
  EXPECT_EQ(Deq(q).entry.task.id.tid, 1u);
  EXPECT_EQ(Deq(q).entry.task.id.tid, 3u);
}

TEST(SwitchQueueTest, SwapIsSingleAccessPerPass) {
  SwitchQueue q("q", 8);
  Enq(q, 0);
  Enq(q, 1);
  auto deq = Deq(q);
  p4::PacketPass pass;
  q.SwapAt(pass, 1, 1, deq.entry);
  // A second swap through the same pass must violate the register budget.
  EXPECT_THROW(q.SwapAt(pass, 1, 1, MakeEntry(9)), draconis::CheckFailure);
}

TEST(SwitchQueueTest, InvalidEntriesAreRejected) {
  SwitchQueue q("q", 8);
  QueueEntry invalid;
  p4::PacketPass pass;
  EXPECT_THROW(q.Enqueue(pass, invalid), draconis::CheckFailure);
}

TEST(SwitchQueueTest, LongRunModularIndexingStaysConsistent) {
  // Thousands of wraps over a small odd capacity: pointers grow
  // monotonically while slots cycle; order and conservation must hold.
  SwitchQueue q("q", 5);
  uint32_t produced = 0;
  uint32_t consumed = 0;
  for (int round = 0; round < 3000; ++round) {
    const int in_flight = static_cast<int>(produced - consumed);
    const int to_add = (round * 7 % 5) - in_flight + 2;  // varies occupancy 0..5
    for (int i = 0; i < to_add; ++i) {
      p4::PacketPass pass;
      if (q.Enqueue(pass, MakeEntry(produced)).added) {
        ++produced;
      }
    }
    const int to_take = round % 3;
    for (int i = 0; i < to_take; ++i) {
      p4::PacketPass pass;
      auto res = q.Dequeue(pass);
      if (res.got_task) {
        ASSERT_EQ(res.entry.task.id.tid, consumed);
        ++consumed;
      }
    }
  }
  // Drain.
  while (consumed < produced) {
    p4::PacketPass pass;
    auto res = q.Dequeue(pass);
    ASSERT_TRUE(res.got_task);
    ASSERT_EQ(res.entry.task.id.tid, consumed);
    ++consumed;
  }
  EXPECT_GT(q.cp_add_ptr(), 2000u);  // many wraps actually happened
}

// --- Tie-break contract (see the header comment and docs/pifo.md) ----------

// Equal-priority tasks dequeue in the order they were admitted — strict
// FIFO — in both dequeue modes and across full-queue and overrun repair
// episodes. MakeEntry leaves tprops at 0, so every task here is
// equal-priority; the PIFO equivalence golden (determinism_test.cc) relies
// on this exact contract.
TEST(SwitchQueueTest, EqualPriorityTasksDequeueInArrivalOrderAcrossRepairs) {
  for (bool shadow : {true, false}) {
    SCOPED_TRACE(shadow ? "shadow" : "textbook");
    SwitchQueue q("q", 4, nullptr, shadow);
    std::deque<uint32_t> admitted;
    uint32_t next_id = 0;

    auto push = [&] {
      auto r = Enq(q, next_id);
      if (r.added) {
        admitted.push_back(next_id);
      }
      ++next_id;
      // Land any repair this mistake launched, as the pipeline would.
      if (r.need_add_repair) {
        Repair(q, net::RepairTarget::kAddPtr, r.add_repair_value);
      }
      if (r.need_retrieve_repair) {
        Repair(q, net::RepairTarget::kRetrievePtr, r.retrieve_repair_value);
      }
    };
    auto pop = [&] {
      auto r = Deq(q);
      if (r.got_task) {
        ASSERT_FALSE(admitted.empty());
        EXPECT_EQ(r.entry.task.id.tid, admitted.front());
        admitted.pop_front();
      }
    };

    for (int round = 0; round < 200; ++round) {
      // Idle polling on a (possibly) empty queue: textbook mode overruns and
      // repairs on the next enqueue; shadow mode makes no mistake.
      pop();
      pop();
      // Burst past capacity so full-queue add repairs fire regularly.
      for (int i = 0; i < 3 + round % 4; ++i) {
        push();
      }
      pop();
    }
    while (!admitted.empty()) {
      pop();
    }
    EXPECT_FALSE(Deq(q).got_task);
  }
}

TEST(SwitchQueueTest, LedgerAccountsQueueMemory) {
  p4::ResourceLedger ledger;
  SwitchQueue q("q", 1024, &ledger);
  // entries + two pointers + shadow add pointer + combined repair state
  EXPECT_EQ(ledger.entries().size(), 5u);
  EXPECT_EQ(ledger.total_bytes(), 1024 * QueueEntry::kWireSize + 8 + 8 + 8 + 8);
}

// --- Shadow-copy dequeue (production mode, see switch_queue.h) --------------

TEST(SwitchQueueTest, ShadowModeEmptyDequeueDoesNotOverrun) {
  SwitchQueue q("q", 8);  // shadow mode is the default
  for (int i = 0; i < 100; ++i) {
    auto deq = Deq(q);
    EXPECT_FALSE(deq.got_task);
  }
  // The pointer never moved: polling an empty queue makes no mistake.
  EXPECT_EQ(q.cp_retrieve_ptr(), 0u);
}

TEST(SwitchQueueTest, ShadowModeEnqueueAfterPollingNeedsNoRepair) {
  SwitchQueue q("q", 8);
  for (int i = 0; i < 50; ++i) {
    Deq(q);
  }
  auto enq = Enq(q, 42);
  EXPECT_TRUE(enq.added);
  EXPECT_FALSE(enq.need_retrieve_repair);
  auto deq = Deq(q);
  ASSERT_TRUE(deq.got_task);
  EXPECT_EQ(deq.entry.task.id.tid, 42u);
}

TEST(SwitchQueueTest, ShadowModeInterleavedPollsAndEnqueues) {
  SwitchQueue q("q", 4);
  for (uint32_t i = 0; i < 20; ++i) {
    Deq(q);  // poll empty
    EXPECT_TRUE(Enq(q, i).added);
    Deq(q);  // poll: gets the task
    auto deq = Deq(q);  // poll empty again
    EXPECT_FALSE(deq.got_task);
  }
  EXPECT_EQ(q.cp_occupancy(), 0u);
  EXPECT_EQ(q.cp_add_ptr(), 20u);
  EXPECT_EQ(q.cp_retrieve_ptr(), 20u);
}

TEST(SwitchQueueTest, ShadowModeFullQueueMistakeDoesNotInflateShadow) {
  // A full-queue add_ptr mistake must not let dequeues chase phantom slots.
  SwitchQueue q("q", 2);
  Enq(q, 0);
  Enq(q, 1);
  auto full = Enq(q, 2);  // mistake: add_ptr = 3, but shadow stays at 2
  ASSERT_TRUE(full.need_add_repair);
  EXPECT_EQ(Deq(q).entry.task.id.tid, 0u);
  EXPECT_EQ(Deq(q).entry.task.id.tid, 1u);
  auto deq = Deq(q);  // beyond the shadow: clean empty, no phantom slot
  EXPECT_FALSE(deq.got_task);
  EXPECT_EQ(q.cp_retrieve_ptr(), 2u);
}

TEST(SwitchQueueTest, ShadowModeSingleAccessPerRegisterStillHolds) {
  SwitchQueue q("q", 8);
  Enq(q, 0);
  p4::PacketPass pass;
  EXPECT_NO_THROW(q.Dequeue(pass));
  // The same pass cannot run a second dequeue (flag register re-access).
  EXPECT_THROW(q.Dequeue(pass), draconis::CheckFailure);
}

}  // namespace
}  // namespace draconis::core
