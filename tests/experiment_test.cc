// Unit-level checks of the experiment harness: bookkeeping math, window
// semantics, defaults, and scheduler-specific wiring that the figure benches
// rely on.

#include <gtest/gtest.h>

#include <string>

#include "cluster/deployment.h"
#include "cluster/experiment.h"
#include "common/check.h"
#include "topology/topology.h"
#include "workload/generators.h"

namespace draconis::cluster {
namespace {

ExperimentConfig TinyConfig(double tasks_per_second = 40000.0) {
  ExperimentConfig config;
  config.scheduler = SchedulerKind::kDraconis;
  config.num_workers = 2;
  config.executors_per_worker = 4;
  config.num_clients = 1;
  config.warmup = FromMillis(2);
  config.horizon = FromMillis(20);
  config.max_tasks_per_packet = 1;

  workload::OpenLoopSpec spec;
  spec.tasks_per_second = tasks_per_second;
  spec.duration = config.horizon;
  spec.service = workload::ServiceTime::Fixed(FromMicros(100));
  spec.seed = 3;
  config.stream = workload::GenerateOpenLoop(spec);
  return config;
}

TEST(ExperimentTest, OfferedUtilizationMatchesArithmetic) {
  // 40k tasks/s x 100 us over 8 executors = 50%.
  ExperimentResult result = RunExperiment(TinyConfig());
  EXPECT_NEAR(result.offered_utilization, 0.5, 0.03);
  EXPECT_NEAR(result.offered_tasks_per_second, 40000.0, 2500.0);
}

TEST(ExperimentTest, BusyFractionTracksOfferedLoad) {
  ExperimentResult result = RunExperiment(TinyConfig());
  EXPECT_NEAR(result.executor_busy_fraction, result.offered_utilization, 0.06);
}

TEST(ExperimentTest, WarmupTasksAreNotMeasured) {
  ExperimentConfig config = TinyConfig();
  config.warmup = FromMillis(10);  // half the stream is warmup
  ExperimentResult half = RunExperiment(config);
  config.warmup = FromMillis(2);
  ExperimentResult most = RunExperiment(config);
  EXPECT_LT(half.metrics->tasks_submitted(), most.metrics->tasks_submitted() * 2 / 3);
}

TEST(ExperimentTest, DefaultHorizonCoversTheStream) {
  ExperimentConfig config = TinyConfig();
  config.horizon = 0;  // derive from the last arrival
  ExperimentResult result = RunExperiment(config);
  // Everything submitted completes within the derived horizon + margin.
  EXPECT_EQ(result.metrics->tasks_completed(), result.metrics->tasks_submitted());
}

TEST(ExperimentTest, ThroughputMatchesCompletionsPerWindow) {
  ExperimentResult result = RunExperiment(TinyConfig());
  const double window_seconds = ToSeconds(FromMillis(20) - FromMillis(2));
  EXPECT_NEAR(result.throughput_tps,
              static_cast<double>(result.metrics->tasks_completed()) / window_seconds,
              1.0);
}

TEST(ExperimentTest, TextbookDequeueModeIsWiredThrough) {
  ExperimentConfig config = TinyConfig();
  config.shadow_copy_dequeue = false;
  ExperimentResult result = RunExperiment(config);
  // The textbook dequeue repairs the retrieve pointer after empty-queue
  // dips; at 50% load there are plenty.
  EXPECT_GT(result.counters.retrieve_repairs, 0u);

  config.shadow_copy_dequeue = true;
  ExperimentResult shadow = RunExperiment(config);
  EXPECT_EQ(shadow.counters.retrieve_repairs, 0u);
}

TEST(ExperimentTest, RackSchedIntraPolicyIsWiredThrough) {
  ExperimentConfig config = TinyConfig(64000.0);  // 80%: queues form
  config.scheduler = SchedulerKind::kRackSched;
  config.racksched_intra_policy = baselines::IntraNodePolicy::kProcessorSharing;
  ExperimentResult ps = RunExperiment(config);
  config.racksched_intra_policy = baselines::IntraNodePolicy::kFcfs;
  ExperimentResult fcfs = RunExperiment(config);
  // Both complete the work; PS has the (weakly) smaller queueing tail.
  EXPECT_GT(ps.metrics->tasks_completed(), 0u);
  EXPECT_LE(ps.metrics->sched_delay().Percentile(0.99),
            fcfs.metrics->sched_delay().Percentile(0.99));
}

TEST(ExperimentTest, PipelineOverridesAreHonored) {
  ExperimentConfig config = TinyConfig();
  config.scheduler = SchedulerKind::kR2P2;
  config.jbsq_k = 1;
  // Choke the loopback port completely: any spin drops immediately.
  config.pipeline.recirc_rate_pps = 1e3;
  config.pipeline.recirc_queue_depth = 1;
  ExperimentConfig heavy = config;
  heavy.stream = [] {
    workload::OpenLoopSpec spec;
    spec.tasks_per_second = 76000.0;  // ~95% of 8 executors
    spec.duration = FromMillis(20);
    spec.service = workload::ServiceTime::Fixed(FromMicros(100));
    spec.seed = 3;
    return workload::GenerateOpenLoop(spec);
  }();
  ExperimentResult result = RunExperiment(heavy);
  EXPECT_GT(result.recirc_drops, 0u);
}

TEST(ExperimentTest, SparrowMultiSchedulerDeploysDistinctServers) {
  ExperimentConfig config = TinyConfig();
  config.scheduler = SchedulerKind::kSparrow;
  config.num_schedulers = 2;
  ExperimentResult result = RunExperiment(config);
  EXPECT_GT(result.counters.tasks_launched, 0u);
  EXPECT_GE(result.metrics->tasks_completed(), result.metrics->tasks_submitted() * 97 / 100);
}

TEST(ExperimentTest, SeedChangesWorkloadButNotShape) {
  ExperimentConfig a = TinyConfig();
  a.seed = 1;
  ExperimentConfig b = TinyConfig();
  b.seed = 2;
  ExperimentResult ra = RunExperiment(a);
  ExperimentResult rb = RunExperiment(b);
  EXPECT_GT(ra.metrics->tasks_completed(), 0u);
  EXPECT_GT(rb.metrics->tasks_completed(), 0u);
  // Network jitter differs by seed, so pass counts differ.
  EXPECT_NE(ra.switch_counters.emitted, rb.switch_counters.emitted);
}

TEST(ExperimentTest, SchedulerKindNamesRoundTrip) {
  for (SchedulerKind kind :
       {SchedulerKind::kDraconis, SchedulerKind::kDraconisDpdkServer,
        SchedulerKind::kDraconisSocketServer, SchedulerKind::kR2P2, SchedulerKind::kRackSched,
        SchedulerKind::kSparrow}) {
    SchedulerKind parsed;
    ASSERT_TRUE(SchedulerKindFromName(SchedulerKindName(kind), &parsed))
        << SchedulerKindName(kind);
    EXPECT_EQ(parsed, kind);
  }
}

TEST(ExperimentTest, SchedulerKindFromNameIsCaseInsensitiveWithShortSpellings) {
  SchedulerKind parsed;
  ASSERT_TRUE(SchedulerKindFromName("draconis", &parsed));
  EXPECT_EQ(parsed, SchedulerKind::kDraconis);
  ASSERT_TRUE(SchedulerKindFromName("RACKSCHED", &parsed));
  EXPECT_EQ(parsed, SchedulerKind::kRackSched);
  ASSERT_TRUE(SchedulerKindFromName("dpdk-server", &parsed));
  EXPECT_EQ(parsed, SchedulerKind::kDraconisDpdkServer);
  ASSERT_TRUE(SchedulerKindFromName("socket-server", &parsed));
  EXPECT_EQ(parsed, SchedulerKind::kDraconisSocketServer);
  EXPECT_FALSE(SchedulerKindFromName("mesos", &parsed));
  EXPECT_FALSE(SchedulerKindFromName("", &parsed));
}

TEST(ExperimentTest, PolicyKindNamesRoundTrip) {
  for (PolicyKind kind : {PolicyKind::kFcfs, PolicyKind::kPriority, PolicyKind::kResource,
                          PolicyKind::kLocality}) {
    PolicyKind parsed;
    ASSERT_TRUE(PolicyKindFromName(PolicyKindName(kind), &parsed)) << PolicyKindName(kind);
    EXPECT_EQ(parsed, kind);
  }
  PolicyKind parsed;
  ASSERT_TRUE(PolicyKindFromName("FCFS", &parsed));
  EXPECT_EQ(parsed, PolicyKind::kFcfs);
  EXPECT_FALSE(PolicyKindFromName("round-robin", &parsed));
}

// --- ExperimentConfig::Validate ----------------------------------------------

TEST(ValidateTest, AcceptsTheTinyConfig) {
  EXPECT_EQ(TinyConfig().Validate(), "");
}

TEST(ValidateTest, RejectsZeroSizedCluster) {
  ExperimentConfig config = TinyConfig();
  config.num_workers = 0;
  EXPECT_NE(config.Validate().find("num_workers"), std::string::npos);

  config = TinyConfig();
  config.executors_per_worker = 0;
  EXPECT_NE(config.Validate().find("executors_per_worker"), std::string::npos);

  config = TinyConfig();
  config.num_clients = 0;
  EXPECT_NE(config.Validate().find("num_clients"), std::string::npos);
}

TEST(ValidateTest, RejectsReplicatingSingleInstanceSchedulers) {
  ExperimentConfig config = TinyConfig();
  config.num_schedulers = 2;  // only Sparrow deploys replicas
  const std::string error = config.Validate();
  EXPECT_NE(error.find("num_schedulers"), std::string::npos) << error;

  config.scheduler = SchedulerKind::kSparrow;
  EXPECT_EQ(config.Validate(), "");
}

TEST(ValidateTest, RejectsPoliciesTheSchedulerIgnores) {
  ExperimentConfig config = TinyConfig();
  config.scheduler = SchedulerKind::kR2P2;
  config.policy = PolicyKind::kPriority;
  const std::string error = config.Validate();
  EXPECT_NE(error.find("ignores policy"), std::string::npos) << error;
  EXPECT_NE(error.find("R2P2"), std::string::npos) << error;

  // Draconis honors every policy.
  config.scheduler = SchedulerKind::kDraconis;
  EXPECT_EQ(config.Validate(), "");
}

TEST(ValidateTest, RejectsShortResourceTable) {
  ExperimentConfig config = TinyConfig();
  config.policy = PolicyKind::kResource;
  config.worker_resources = {0x1};  // 2 workers, 1 entry
  const std::string error = config.Validate();
  EXPECT_NE(error.find("worker_resources"), std::string::npos) << error;

  config.worker_resources = {0x1, 0x2};
  EXPECT_EQ(config.Validate(), "");
}

TEST(ValidateTest, RejectsSwitchPoliciesTheSchedulerCannotRun) {
  // Only draconis declares PIFO support; every baseline runs the fixed FIFO
  // switch queue (docs/pifo.md).
  ExperimentConfig config = TinyConfig();
  config.scheduler = SchedulerKind::kSparrow;
  config.switch_policy = core::SwitchPolicy::kSrpt;
  const std::string error = config.Validate();
  EXPECT_NE(error.find("switch policy"), std::string::npos) << error;
  EXPECT_NE(error.find("srpt"), std::string::npos) << error;

  config.scheduler = SchedulerKind::kDraconis;
  EXPECT_EQ(config.Validate(), "");
}

TEST(ValidateTest, RejectsClusterCombosTheTopologyCannotRun) {
  // A multi-rack topology on the Draconis kind with fcfs is fine...
  ExperimentConfig config = TinyConfig();
  config.cluster = topology::ClusterTopology::Uniform(2, 2, 4);
  EXPECT_EQ(config.Validate(), "");

  // ...but single-switch baselines cannot shard.
  config.scheduler = SchedulerKind::kSparrow;
  std::string error = config.Validate();
  EXPECT_NE(error.find("multi-rack"), std::string::npos) << error;

  // One scheduler per rack is implied; replicas on top are rejected.
  config = TinyConfig();
  config.cluster = topology::ClusterTopology::Uniform(2, 2, 4);
  config.num_schedulers = 2;
  error = config.Validate();
  EXPECT_NE(error.find("num_schedulers"), std::string::npos) << error;

  // Per-switch policy state (priority levels etc.) is not sharded.
  config = TinyConfig();
  config.cluster = topology::ClusterTopology::Uniform(2, 2, 4);
  config.policy = PolicyKind::kPriority;
  error = config.Validate();
  EXPECT_NE(error.find("fcfs"), std::string::npos) << error;

  // The locality policy's data-rack map and the cluster topology are
  // mutually exclusive models of "rack".
  config = TinyConfig();
  config.cluster = topology::ClusterTopology::Uniform(2, 2, 4);
  config.locality_access_model = true;
  error = config.Validate();
  EXPECT_NE(error.find("locality_access_model"), std::string::npos) << error;

  // Topology-level errors propagate with context.
  config = TinyConfig();
  config.cluster = topology::ClusterTopology::Uniform(2, 2, 4);
  config.cluster.racks[1].num_workers = 0;
  error = config.Validate();
  EXPECT_NE(error.find("cluster topology: "), std::string::npos) << error;
}

TEST(ValidateTest, RejectsSwitchPolicyCombinedWithPerLevelQueues) {
  // A non-FIFO switch policy replaces the retrieval discipline; the
  // per-level queues, swap walks, and parallel probing have no meaning.
  ExperimentConfig config = TinyConfig();
  config.switch_policy = core::SwitchPolicy::kStrictPriority;
  config.policy = PolicyKind::kPriority;
  std::string error = config.Validate();
  EXPECT_NE(error.find("fcfs"), std::string::npos) << error;

  config = TinyConfig();
  config.switch_policy = core::SwitchPolicy::kEdf;
  config.parallel_priority_stages = true;
  error = config.Validate();
  EXPECT_NE(error.find("parallel_priority_stages"), std::string::npos) << error;
}

TEST(ValidateTest, RejectsDegenerateWfqWeights) {
  ExperimentConfig config = TinyConfig();
  config.switch_policy = core::SwitchPolicy::kWfq;
  config.wfq_weights = {};
  EXPECT_NE(config.Validate().find("weight"), std::string::npos);

  config.wfq_weights = {3, 0};
  EXPECT_NE(config.Validate().find("positive"), std::string::npos);

  config.wfq_weights = {3, 1};
  EXPECT_EQ(config.Validate(), "");
}

TEST(ValidateTest, RejectsWarmupPastTheHorizon) {
  ExperimentConfig config = TinyConfig();
  config.warmup = config.horizon;
  const std::string error = config.Validate();
  EXPECT_NE(error.find("warmup"), std::string::npos) << error;
}

TEST(ValidateTest, RunExperimentRefusesInvalidConfigs) {
  ExperimentConfig config = TinyConfig();
  config.num_workers = 0;
  EXPECT_THROW(RunExperiment(config), draconis::CheckFailure);
}

// --- Deployment registry -----------------------------------------------------

TEST(DeploymentRegistryTest, EnumeratesAllKindsInEnumOrder) {
  const std::vector<DeploymentInfo>& infos = DeploymentRegistry::Get().all();
  ASSERT_EQ(infos.size(), 6u);
  for (size_t i = 0; i < infos.size(); ++i) {
    EXPECT_EQ(static_cast<size_t>(infos[i].kind), i);
    EXPECT_STREQ(SchedulerKindName(infos[i].kind), infos[i].canonical_name);
  }
}

TEST(DeploymentRegistryTest, FlagChoicesMatchRegistration) {
  const std::vector<std::string> choices = DeploymentRegistry::Get().FlagChoices();
  const std::vector<std::string> expected = {"draconis",  "dpdk-server", "socket-server",
                                             "r2p2",      "racksched",   "sparrow"};
  EXPECT_EQ(choices, expected);
}

TEST(DeploymentRegistryTest, FindByNameAcceptsCanonicalAndFlagSpellings) {
  const DeploymentRegistry& registry = DeploymentRegistry::Get();
  ASSERT_NE(registry.FindByName("Draconis-DPDK-Server"), nullptr);
  EXPECT_EQ(registry.FindByName("Draconis-DPDK-Server")->kind,
            SchedulerKind::kDraconisDpdkServer);
  ASSERT_NE(registry.FindByName("dpdk-server"), nullptr);
  EXPECT_EQ(registry.FindByName("dpdk-server")->kind, SchedulerKind::kDraconisDpdkServer);
  EXPECT_EQ(registry.FindByName("mesos"), nullptr);
}

// Registry-driven smoke matrix: every registered kind (x every policy it
// honors) pushes a tiny stream to completion and reports into the counter
// fields that kind owns. A new scheduler registered in the DeploymentRegistry
// is picked up here automatically.
TEST(DeploymentRegistryTest, SmokeMatrixEveryKindCompletesAndHarvests) {
  for (const DeploymentInfo& info : DeploymentRegistry::Get().all()) {
    for (PolicyKind policy : info.policies) {
      SCOPED_TRACE(std::string(info.canonical_name) + " / " + PolicyKindName(policy));
      ExperimentConfig config = TinyConfig(20000.0);  // 25%: everything drains
      config.scheduler = info.kind;
      config.policy = policy;
      if (policy == PolicyKind::kResource) {
        config.worker_resources = {0x1, 0x1};  // every worker can run tprops=0
      }
      ExperimentResult result = RunExperiment(config);

      EXPECT_GT(result.metrics->tasks_completed(), 0u);
      EXPECT_GE(result.metrics->tasks_completed(),
                result.metrics->tasks_submitted() * 9 / 10);
      switch (info.kind) {
        case SchedulerKind::kDraconis:
          EXPECT_GT(result.counters.tasks_enqueued, 0u);
          EXPECT_GT(result.counters.tasks_assigned, 0u);
          EXPECT_GT(result.switch_counters.passes, 0u);
          break;
        case SchedulerKind::kDraconisDpdkServer:
        case SchedulerKind::kDraconisSocketServer:
          EXPECT_GT(result.counters.tasks_enqueued, 0u);
          EXPECT_GT(result.counters.tasks_assigned, 0u);
          break;
        case SchedulerKind::kR2P2:
          EXPECT_GT(result.counters.tasks_pushed, 0u);
          EXPECT_GT(result.counters.credits, 0u);
          EXPECT_GT(result.switch_counters.passes, 0u);
          break;
        case SchedulerKind::kRackSched:
          EXPECT_GT(result.counters.tasks_pushed, 0u);
          EXPECT_GT(result.counters.credits, 0u);
          EXPECT_GT(result.switch_counters.passes, 0u);
          break;
        case SchedulerKind::kSparrow:
          EXPECT_GT(result.counters.probes_sent, 0u);
          EXPECT_GT(result.counters.tasks_launched, 0u);
          break;
      }
    }
  }
}

}  // namespace
}  // namespace draconis::cluster
