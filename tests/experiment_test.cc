// Unit-level checks of the experiment harness: bookkeeping math, window
// semantics, defaults, and scheduler-specific wiring that the figure benches
// rely on.

#include <gtest/gtest.h>

#include "cluster/experiment.h"
#include "workload/generators.h"

namespace draconis::cluster {
namespace {

ExperimentConfig TinyConfig(double tasks_per_second = 40000.0) {
  ExperimentConfig config;
  config.scheduler = SchedulerKind::kDraconis;
  config.num_workers = 2;
  config.executors_per_worker = 4;
  config.num_clients = 1;
  config.warmup = FromMillis(2);
  config.horizon = FromMillis(20);
  config.max_tasks_per_packet = 1;

  workload::OpenLoopSpec spec;
  spec.tasks_per_second = tasks_per_second;
  spec.duration = config.horizon;
  spec.service = workload::ServiceTime::Fixed(FromMicros(100));
  spec.seed = 3;
  config.stream = workload::GenerateOpenLoop(spec);
  return config;
}

TEST(ExperimentTest, OfferedUtilizationMatchesArithmetic) {
  // 40k tasks/s x 100 us over 8 executors = 50%.
  ExperimentResult result = RunExperiment(TinyConfig());
  EXPECT_NEAR(result.offered_utilization, 0.5, 0.03);
  EXPECT_NEAR(result.offered_tasks_per_second, 40000.0, 2500.0);
}

TEST(ExperimentTest, BusyFractionTracksOfferedLoad) {
  ExperimentResult result = RunExperiment(TinyConfig());
  EXPECT_NEAR(result.executor_busy_fraction, result.offered_utilization, 0.06);
}

TEST(ExperimentTest, WarmupTasksAreNotMeasured) {
  ExperimentConfig config = TinyConfig();
  config.warmup = FromMillis(10);  // half the stream is warmup
  ExperimentResult half = RunExperiment(config);
  config.warmup = FromMillis(2);
  ExperimentResult most = RunExperiment(config);
  EXPECT_LT(half.metrics->tasks_submitted(), most.metrics->tasks_submitted() * 2 / 3);
}

TEST(ExperimentTest, DefaultHorizonCoversTheStream) {
  ExperimentConfig config = TinyConfig();
  config.horizon = 0;  // derive from the last arrival
  ExperimentResult result = RunExperiment(config);
  // Everything submitted completes within the derived horizon + margin.
  EXPECT_EQ(result.metrics->tasks_completed(), result.metrics->tasks_submitted());
}

TEST(ExperimentTest, ThroughputMatchesCompletionsPerWindow) {
  ExperimentResult result = RunExperiment(TinyConfig());
  const double window_seconds = ToSeconds(FromMillis(20) - FromMillis(2));
  EXPECT_NEAR(result.throughput_tps,
              static_cast<double>(result.metrics->tasks_completed()) / window_seconds,
              1.0);
}

TEST(ExperimentTest, TextbookDequeueModeIsWiredThrough) {
  ExperimentConfig config = TinyConfig();
  config.shadow_copy_dequeue = false;
  ExperimentResult result = RunExperiment(config);
  // The textbook dequeue repairs the retrieve pointer after empty-queue
  // dips; at 50% load there are plenty.
  EXPECT_GT(result.counters.retrieve_repairs, 0u);

  config.shadow_copy_dequeue = true;
  ExperimentResult shadow = RunExperiment(config);
  EXPECT_EQ(shadow.counters.retrieve_repairs, 0u);
}

TEST(ExperimentTest, RackSchedIntraPolicyIsWiredThrough) {
  ExperimentConfig config = TinyConfig(64000.0);  // 80%: queues form
  config.scheduler = SchedulerKind::kRackSched;
  config.racksched_intra_policy = baselines::IntraNodePolicy::kProcessorSharing;
  ExperimentResult ps = RunExperiment(config);
  config.racksched_intra_policy = baselines::IntraNodePolicy::kFcfs;
  ExperimentResult fcfs = RunExperiment(config);
  // Both complete the work; PS has the (weakly) smaller queueing tail.
  EXPECT_GT(ps.metrics->tasks_completed(), 0u);
  EXPECT_LE(ps.metrics->sched_delay().Percentile(0.99),
            fcfs.metrics->sched_delay().Percentile(0.99));
}

TEST(ExperimentTest, PipelineOverridesAreHonored) {
  ExperimentConfig config = TinyConfig();
  config.scheduler = SchedulerKind::kR2P2;
  config.jbsq_k = 1;
  // Choke the loopback port completely: any spin drops immediately.
  config.pipeline.recirc_rate_pps = 1e3;
  config.pipeline.recirc_queue_depth = 1;
  ExperimentConfig heavy = config;
  heavy.stream = [] {
    workload::OpenLoopSpec spec;
    spec.tasks_per_second = 76000.0;  // ~95% of 8 executors
    spec.duration = FromMillis(20);
    spec.service = workload::ServiceTime::Fixed(FromMicros(100));
    spec.seed = 3;
    return workload::GenerateOpenLoop(spec);
  }();
  ExperimentResult result = RunExperiment(heavy);
  EXPECT_GT(result.recirc_drops, 0u);
}

TEST(ExperimentTest, SparrowMultiSchedulerDeploysDistinctServers) {
  ExperimentConfig config = TinyConfig();
  config.scheduler = SchedulerKind::kSparrow;
  config.num_schedulers = 2;
  ExperimentResult result = RunExperiment(config);
  EXPECT_GT(result.counters.tasks_launched, 0u);
  EXPECT_GE(result.metrics->tasks_completed(), result.metrics->tasks_submitted() * 97 / 100);
}

TEST(ExperimentTest, SeedChangesWorkloadButNotShape) {
  ExperimentConfig a = TinyConfig();
  a.seed = 1;
  ExperimentConfig b = TinyConfig();
  b.seed = 2;
  ExperimentResult ra = RunExperiment(a);
  ExperimentResult rb = RunExperiment(b);
  EXPECT_GT(ra.metrics->tasks_completed(), 0u);
  EXPECT_GT(rb.metrics->tasks_completed(), 0u);
  // Network jitter differs by seed, so pass counts differ.
  EXPECT_NE(ra.switch_counters.emitted, rb.switch_counters.emitted);
}

TEST(ExperimentTest, SchedulerKindNamesRoundTrip) {
  for (SchedulerKind kind :
       {SchedulerKind::kDraconis, SchedulerKind::kDraconisDpdkServer,
        SchedulerKind::kDraconisSocketServer, SchedulerKind::kR2P2, SchedulerKind::kRackSched,
        SchedulerKind::kSparrow}) {
    SchedulerKind parsed;
    ASSERT_TRUE(SchedulerKindFromName(SchedulerKindName(kind), &parsed))
        << SchedulerKindName(kind);
    EXPECT_EQ(parsed, kind);
  }
}

TEST(ExperimentTest, SchedulerKindFromNameIsCaseInsensitiveWithShortSpellings) {
  SchedulerKind parsed;
  ASSERT_TRUE(SchedulerKindFromName("draconis", &parsed));
  EXPECT_EQ(parsed, SchedulerKind::kDraconis);
  ASSERT_TRUE(SchedulerKindFromName("RACKSCHED", &parsed));
  EXPECT_EQ(parsed, SchedulerKind::kRackSched);
  ASSERT_TRUE(SchedulerKindFromName("dpdk-server", &parsed));
  EXPECT_EQ(parsed, SchedulerKind::kDraconisDpdkServer);
  ASSERT_TRUE(SchedulerKindFromName("socket-server", &parsed));
  EXPECT_EQ(parsed, SchedulerKind::kDraconisSocketServer);
  EXPECT_FALSE(SchedulerKindFromName("mesos", &parsed));
  EXPECT_FALSE(SchedulerKindFromName("", &parsed));
}

TEST(ExperimentTest, PolicyKindNamesRoundTrip) {
  for (PolicyKind kind : {PolicyKind::kFcfs, PolicyKind::kPriority, PolicyKind::kResource,
                          PolicyKind::kLocality}) {
    PolicyKind parsed;
    ASSERT_TRUE(PolicyKindFromName(PolicyKindName(kind), &parsed)) << PolicyKindName(kind);
    EXPECT_EQ(parsed, kind);
  }
  PolicyKind parsed;
  ASSERT_TRUE(PolicyKindFromName("FCFS", &parsed));
  EXPECT_EQ(parsed, PolicyKind::kFcfs);
  EXPECT_FALSE(PolicyKindFromName("round-robin", &parsed));
}

}  // namespace
}  // namespace draconis::cluster
