#!/usr/bin/env python3
"""Validate and summarize Draconis task-lifecycle trace outputs.

Accepts any mix of the two JSON artifacts a `--trace` bench run emits
(docs/observability.md):

  *_trace.json        Chrome trace-event format (Perfetto-loadable)
  *_attribution.json  per-stage latency attribution report

For trace files it checks that event timestamps are monotonic, that every
"B" has a matching "E" on the same (pid, tid, name) track, and that every
sampled task reaches a terminal state (complete / censored / net_drop /
program_drop / recirc_drop). Fault-injected runs (docs/fault_injection.md)
additionally get a summary of the `fault_window` spans and `rehome` records
on the synthetic "system" track. For attribution files it checks the telescoping
invariant — the five stage durations sum exactly (integer ns) to each task's
end-to-end total — and the sampled == completed + censored accounting, then
prints the per-stage table and the top-K slowest tasks.

Exits non-zero on any violation.

Usage: scripts/trace_stats.py FILE [FILE ...]
"""

import json
import sys

TERMINAL_EVENTS = {"complete", "censored", "net_drop", "program_drop", "recirc_drop"}


def fail(path, message):
    print(f"FAIL {path}: {message}", file=sys.stderr)
    return 1


def check_chrome_trace(path, doc):
    errors = 0
    events = doc.get("traceEvents", [])
    # Task pids, from process_name metadata ("task u:j:t").
    task_pids = {}
    for ev in events:
        if ev.get("ph") == "M" and ev.get("name") == "process_name":
            name = ev.get("args", {}).get("name", "")
            if name.startswith("task "):
                task_pids[ev["pid"]] = name

    last_ts = None
    open_spans = {}  # (pid, tid, name) -> [begin ts, ...]
    terminal_pids = set()
    counts = {"B": 0, "E": 0, "i": 0}
    fault_windows = []  # (begin us, end us) of closed fault_window spans
    rehomes = 0
    for ev in events:
        ph = ev.get("ph")
        if ph == "M":
            continue
        ts = ev.get("ts")
        if ts is None:
            errors += fail(path, f"event without ts: {ev}")
            continue
        if last_ts is not None and ts < last_ts:
            errors += fail(path, f"non-monotonic ts: {ts} after {last_ts}")
        last_ts = ts
        counts[ph] = counts.get(ph, 0) + 1
        key = (ev.get("pid"), ev.get("tid"), ev.get("name"))
        if ph == "B":
            open_spans.setdefault(key, []).append(ts)
        elif ph == "E":
            stack = open_spans.get(key)
            if not stack:
                errors += fail(path, f"E without matching B on {key} at ts={ts}")
            else:
                begin = stack.pop()
                if ts < begin:
                    errors += fail(path, f"span on {key} ends ({ts}) before it begins ({begin})")
                elif ev.get("name") == "fault_window":
                    fault_windows.append((begin, ts))
        if ph == "i" and ev.get("name") == "rehome":
            rehomes += 1
        if ev.get("name") in TERMINAL_EVENTS:
            terminal_pids.add(ev.get("pid"))

    for key, stack in open_spans.items():
        if stack:
            errors += fail(path, f"{len(stack)} unclosed span(s) on {key}")
    for pid, name in sorted(task_pids.items()):
        if pid not in terminal_pids:
            errors += fail(path, f"{name} (pid {pid}) never reaches a terminal state")

    if errors == 0:
        print(
            f"OK   {path}: {len(task_pids)} tasks, "
            f"{counts['B']} spans ({counts['i']} instants), "
            f"sample 1/{doc.get('samplePeriod', '?')}, "
            f"{doc.get('droppedRecords', 0)} dropped records"
        )
        if fault_windows or rehomes:
            total_us = sum(end - begin for begin, end in fault_windows)
            spans = ", ".join(
                f"[{begin / 1e3:.3f}ms, {end / 1e3:.3f}ms]" for begin, end in fault_windows
            )
            print(
                f"     fault: {len(fault_windows)} window(s) totaling "
                f"{total_us / 1e3:.3f}ms ({spans}), {rehomes} rehome(s)"
            )
    return errors


STAGES = ["client", "wire", "scheduling", "queue", "executor"]


def check_attribution(path, doc, top_k=10):
    errors = 0
    sampled = doc.get("sampled_tasks", 0)
    completed = doc.get("completed_tasks", 0)
    censored = doc.get("censored_tasks", 0)
    partial = doc.get("partial_timelines", 0)
    tasks = doc.get("tasks", [])

    if sampled != completed + censored:
        errors += fail(
            path, f"sampled ({sampled}) != completed ({completed}) + censored ({censored})"
        )
    if len(tasks) != completed - partial:
        errors += fail(
            path,
            f"attributed tasks ({len(tasks)}) != completed ({completed}) - partial ({partial})",
        )
    for task in tasks:
        total = sum(task[f"{stage}_ns"] for stage in STAGES)
        if total != task["total_ns"]:
            errors += fail(
                path,
                f"task {task['uid']}:{task['jid']}:{task['tid']} stages sum to "
                f"{total} ns but total_ns is {task['total_ns']}",
            )
        if any(task[f"{stage}_ns"] < 0 for stage in STAGES):
            errors += fail(
                path, f"task {task['uid']}:{task['jid']}:{task['tid']} has a negative stage"
            )

    if errors:
        return errors

    print(f"OK   {path}: {sampled} sampled = {completed} completed + {censored} censored"
          f" ({partial} partial timelines, sample 1/{doc.get('sample_period', '?')})")
    stages = doc.get("stages", {})
    print(f"     {'stage':<12} {'count':>8} {'mean us':>10} {'p50 us':>10} "
          f"{'p99 us':>10} {'max us':>10}")
    for stage in STAGES + ["total"]:
        h = stages.get(stage, {})
        if not h or h.get("count", 0) == 0:
            continue
        print(
            f"     {stage:<12} {h['count']:>8} {h.get('mean_ns', 0) / 1e3:>10.2f} "
            f"{h.get('p50_ns', 0) / 1e3:>10.2f} {h.get('p99_ns', 0) / 1e3:>10.2f} "
            f"{h.get('max_ns', 0) / 1e3:>10.2f}"
        )
    slowest = doc.get("top_slowest", [])[:top_k]
    if slowest:
        print(f"     top {len(slowest)} slowest:")
        for task in slowest:
            breakdown = " ".join(f"{s}={task[f'{s}_ns'] / 1e3:.2f}us" for s in STAGES)
            print(
                f"       {task['uid']}:{task['jid']}:{task['tid']} "
                f"total={task['total_ns'] / 1e3:.2f}us attempt={task['attempt']} {breakdown}"
            )
    return 0


def main(argv):
    if len(argv) < 2 or argv[1] in ("-h", "--help"):
        print(__doc__)
        return 2
    errors = 0
    for path in argv[1:]:
        try:
            with open(path) as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            errors += fail(path, str(e))
            continue
        if "traceEvents" in doc:
            errors += check_chrome_trace(path, doc)
        elif doc.get("kind") == "trace_attribution":
            errors += check_attribution(path, doc)
        else:
            errors += fail(path, "not a trace or attribution file")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
