#!/usr/bin/env python3
"""Measure the sweep engine's parallel speedup and record it in BENCH_sweep.json.

Runs one converted bench binary (fig05a by default) in QUICK mode twice —
once with --parallelism=1 and once with --parallelism=<cores> — and compares
wall-clock time. The two runs must also produce bit-identical point metrics;
this doubles as an end-to-end determinism check outside the unit tests.

Usage: scripts/sweep_speedup.py [--bench PATH] [--parallelism N] [--out PATH]
       [--sim-queue {ladder,heap}]
"""

import argparse
import json
import os
import subprocess
import sys
import time


def run_once(bench: str, parallelism: int, json_path: str, sim_queue: str) -> float:
    env = dict(os.environ, DRACONIS_BENCH_QUICK="1")
    start = time.monotonic()
    subprocess.run(
        [
            bench,
            f"--parallelism={parallelism}",
            f"--json={json_path}",
            "--progress=false",
            f"--sim-queue={sim_queue}",
        ],
        env=env,
        check=True,
        stdout=subprocess.DEVNULL,
    )
    return time.monotonic() - start


def strip_parallelism(doc: dict) -> dict:
    doc = dict(doc)
    doc.pop("parallelism", None)
    return doc


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--bench", default="build/bench/fig05a_latency_500us")
    parser.add_argument("--parallelism", type=int, default=os.cpu_count() or 1)
    parser.add_argument("--out", default="BENCH_sweep.json")
    parser.add_argument(
        "--sim-queue",
        default="ladder",
        choices=("ladder", "heap"),
        help="event-queue backend forwarded to the bench binary",
    )
    args = parser.parse_args()

    serial_json = args.out + ".serial.tmp"
    parallel_json = args.out + ".parallel.tmp"
    serial_s = run_once(args.bench, 1, serial_json, args.sim_queue)
    parallel_s = run_once(args.bench, args.parallelism, parallel_json, args.sim_queue)

    with open(serial_json) as f:
        serial_doc = json.load(f)
    with open(parallel_json) as f:
        parallel_doc = json.load(f)
    identical = strip_parallelism(serial_doc) == strip_parallelism(parallel_doc)
    os.remove(serial_json)
    os.remove(parallel_json)

    speedup = serial_s / parallel_s if parallel_s > 0 else 0.0
    result = {
        "bench": "sweep_speedup",
        "schema_version": 1,
        "target": os.path.basename(args.bench),
        "sim_queue": args.sim_queue,
        "quick": True,
        "cores": os.cpu_count(),
        "parallelism": args.parallelism,
        "serial_seconds": round(serial_s, 3),
        "parallel_seconds": round(parallel_s, 3),
        "speedup": round(speedup, 2),
        "bit_identical": identical,
        "points": len(serial_doc.get("points", [])),
    }
    with open(args.out, "w") as f:
        json.dump(result, f, indent=2)
        f.write("\n")
    print(json.dumps(result, indent=2))

    if not identical:
        print("FAIL: serial and parallel runs produced different metrics", file=sys.stderr)
        return 1
    # The speedup gate only makes sense on a multi-core runner; a 1-core box
    # still validates bit-identity above.
    if args.parallelism >= 4 and speedup < 2.0:
        print(f"FAIL: expected >=2x speedup at parallelism={args.parallelism}, "
              f"got {speedup:.2f}x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
